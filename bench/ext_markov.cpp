// Extension: a two-state Markov model of Fig 13's regime sequence.
//
// The paper stops at "77 degraded days"; a controller needs the dynamics.
// Fitting the day-to-day chain yields stay probabilities, expected spell
// lengths (how long a degraded stretch lasts once entered - the quarantine
// period question) and a generative model whose synthetic campaigns can be
// used for capacity planning.
#include <cstdio>

#include "analysis/markov.hpp"
#include "common/stats.hpp"
#include "analysis/regime.hpp"
#include "common/table.hpp"
#include "util/campaign_cache.hpp"

int main() {
  using namespace unp;
  bench::print_header(
      "Extension - Markov dynamics of the regime sequence (Fig 13)",
      "degraded spells last days, not weeks; the fitted chain reproduces "
      "the empirical spell structure");

  const bench::CampaignData& data = bench::default_data();
  const CampaignWindow& window = data.campaign->archive.window();
  const analysis::AutoRegime regimes = analysis::classify_regime_excluding_loudest(
      data.extraction.faults, window);

  // Trim to the actual campaign days.
  std::vector<bool> days(regimes.regime.degraded.begin(),
                         regimes.regime.degraded.begin() +
                             static_cast<std::ptrdiff_t>(window.duration_days()));

  const analysis::MarkovRegimeModel model = analysis::fit_markov_regime(days);
  const analysis::SpellStats stats = analysis::spell_stats(days);

  std::printf("P(stay normal)        : %.3f\n", model.p_stay_normal);
  std::printf("P(stay degraded)      : %.3f\n", model.p_stay_degraded);
  std::printf("stationary degraded   : %.1f%% (empirical %.1f%%)\n",
              100.0 * model.stationary_degraded(),
              100.0 * regimes.regime.degraded_fraction());

  TextTable table({"Quantity", "Markov fit", "Empirical"});
  table.add_row({"mean normal spell (days)",
                 format_fixed(model.mean_normal_spell_days(), 1),
                 format_fixed(stats.mean_normal_spell, 1)});
  table.add_row({"mean degraded spell (days)",
                 format_fixed(model.mean_degraded_spell_days(), 1),
                 format_fixed(stats.mean_degraded_spell, 1)});
  table.add_row({"degraded spells", "-", format_count(stats.degraded_spells)});
  table.add_row({"longest degraded spell", "-",
                 format_count(stats.longest_degraded_spell) + " days"});
  std::printf("\n%s\n", table.render().c_str());

  // Generative check: synthetic campaigns from the fitted chain.
  RngStream rng(99);
  RunningStats synthetic;
  for (int trial = 0; trial < 200; ++trial) {
    const std::vector<bool> sim = model.simulate(days.size(), rng);
    std::size_t degraded = 0;
    for (const bool d : sim) degraded += d;
    synthetic.add(100.0 * static_cast<double>(degraded) /
                  static_cast<double>(sim.size()));
  }
  std::printf("synthetic campaigns   : degraded %.1f%% +/- %.1f%% "
              "(200 samples from the fitted chain)\n",
              synthetic.mean(), synthetic.stddev());
  std::printf("\n(mean degraded spell ~%.0f days: once a node misbehaves, "
              "expect days of trouble - the empirical footing for multi-day "
              "quarantine periods in Table II)\n",
              stats.mean_degraded_spell);
  return 0;
}
