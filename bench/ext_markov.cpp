// Extension: a two-state Markov model of Fig 13's regime sequence.
//
// The paper stops at "77 degraded days"; a controller needs the dynamics.
// Fitting the day-to-day chain yields stay probabilities, expected spell
// lengths (how long a degraded stretch lasts once entered - the quarantine
// period question) and a generative model whose synthetic campaigns can be
// used for capacity planning.
#include <vector>

#include "analysis/markov.hpp"
#include "analysis/regime.hpp"
#include "util/campaign_cache.hpp"
#include "util/figures.hpp"

int main() {
  using namespace unp;
  const bench::CampaignData& data = bench::default_data();
  const CampaignWindow& window = data.campaign->archive.window();
  const analysis::AutoRegime regimes = analysis::classify_regime_excluding_loudest(
      data.extraction.faults, window);

  // Trim to the actual campaign days.
  std::vector<bool> days(regimes.regime.degraded.begin(),
                         regimes.regime.degraded.begin() +
                             static_cast<std::ptrdiff_t>(window.duration_days()));

  bench::print_ext_markov(days, analysis::fit_markov_regime(days),
                          analysis::spell_stats(days),
                          regimes.regime.degraded_fraction());
  return 0;
}
