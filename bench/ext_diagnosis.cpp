// Extension: automatic node diagnosis, validated against ground truth.
//
// Section III-H diagnoses the three loud nodes by inspection; the
// classifier does it mechanically from each node's fault record, and the
// simulator's ground-truth mechanisms grade the answer.  The point: an
// operator does not need a year of hindsight - the address/pattern/raw-log
// signature identifies the right repair (retire a page, replace a DIMM,
// replace the node) from the record alone.
#include <algorithm>
#include <cstdio>
#include <map>

#include "analysis/diagnosis.hpp"
#include "common/table.hpp"
#include "util/campaign_cache.hpp"

int main() {
  using namespace unp;
  bench::print_header(
      "Extension - automatic node diagnosis vs ground truth",
      "the Section III-H readings (component failure, weak cells) recovered "
      "mechanically from each node's fault record");

  const bench::CampaignData& data = bench::default_data();
  const auto fleet = analysis::diagnose_fleet(data.extraction.faults);

  // Ground truth: dominant mechanism per node from the simulator.
  std::map<int, std::map<faults::Mechanism, std::uint64_t>> truth;
  for (const auto& ev : data.campaign->summary.ground_truth) {
    ++truth[cluster::node_index(ev.node)][ev.mechanism];
  }
  auto dominant_mechanism = [&](cluster::NodeId node) -> const char* {
    const auto it = truth.find(cluster::node_index(node));
    if (it == truth.end()) return "-";
    const faults::Mechanism best =
        std::max_element(it->second.begin(), it->second.end(),
                         [](const auto& a, const auto& b) {
                           return a.second < b.second;
                         })
            ->first;
    return faults::to_string(best);
  };

  TextTable table({"Node", "Faults", "Addresses", "Patterns", "Diagnosis",
                   "Recommendation", "Ground truth"});
  int shown = 0;
  for (const auto& d : fleet) {
    if (d.faults < 3 && shown >= 12) break;
    table.add_row({cluster::node_name(d.node), format_count(d.faults),
                   format_count(d.distinct_addresses),
                   format_count(d.distinct_patterns),
                   analysis::to_string(d.condition), d.recommendation(),
                   dominant_mechanism(d.node)});
    if (++shown >= 12) break;
  }
  std::printf("%s\n", table.render().c_str());

  // Grade the classifier on the nodes whose mechanism is unambiguous.
  int graded = 0, correct = 0;
  for (const auto& d : fleet) {
    const std::string truth_name = dominant_mechanism(d.node);
    if (truth_name == "degrading-component") {
      ++graded;
      correct += d.condition == analysis::NodeCondition::kComponentFailure;
    } else if (truth_name == "weak-bit") {
      ++graded;
      correct += d.condition == analysis::NodeCondition::kWeakCell;
    } else if (truth_name == "background-transient" ||
               truth_name == "neutron-event" || truth_name == "isolated-sdc") {
      ++graded;
      correct += d.condition == analysis::NodeCondition::kSporadic ||
                 d.condition == analysis::NodeCondition::kHealthy;
    }
  }
  std::printf("classifier accuracy on mechanism-labelled nodes: %d / %d\n",
              correct, graded);
  std::printf("(the removed pathological node never reaches this table - the "
              "extraction filter already pulled it, as the admins did)\n");
  return 0;
}
